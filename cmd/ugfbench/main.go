// Command ugfbench regenerates the figures and tables of "The Universal
// Gossip Fighter": one experiment per paper artifact (see DESIGN.md §3).
// It prints text tables, ASCII charts and machine-checked shape notes, and
// optionally writes CSV and Markdown files per experiment.
//
// The harness is fault-tolerant (DESIGN.md §6): a panicking run is
// isolated and reported instead of crashing the sweep, SIGINT stops the
// sweep cleanly, and with -out every finished run is journaled so that
// -resume continues an interrupted sweep without recomputation and
// reproduces byte-identical outputs.
//
// Examples:
//
//	ugfbench -list
//	ugfbench -exp fig3b                      # one panel, quick fidelity
//	ugfbench -exp all -fidelity medium -out results/
//	ugfbench -exp fig3e -fidelity full       # the paper's exact setting
//	ugfbench -exp all -fidelity full -out results/ -resume   # after ^C
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/ugf-sim/ugf/internal/experiments"
	"github.com/ugf-sim/ugf/internal/runner"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ugfbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ugfbench", flag.ContinueOnError)
	var (
		expID = fs.String("exp", "all",
			"experiment id or \"all\": "+strings.Join(experiments.IDs(), "|"))
		fidelity    = fs.String("fidelity", "quick", "quick|medium|full (full = the paper's 50-run grid)")
		outDir      = fs.String("out", "", "directory for CSV and Markdown output (optional)")
		summary     = fs.String("summary", "", "write a combined claims-status Markdown table to this file")
		seed        = fs.Uint64("seed", 0, "base seed (0: default 2022)")
		workers     = fs.Int("workers", 0, "parallel runs (0: GOMAXPROCS)")
		list        = fs.Bool("list", false, "list experiments and exit")
		progress    = fs.Bool("progress", true, "print run progress")
		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = fs.String("memprofile", "", "write a heap profile to this file on exit")
		resume      = fs.Bool("resume", false, "reuse journaled runs from a previous interrupted sweep (requires -out)")
		maxwall     = fs.Duration("maxwall", 0, "per-run wall-clock watchdog; runs over the limit count as cutoffs (0: none)")
		cancelAfter = fs.Int("cancelafter", 0, "cancel the sweep after this many completed runs — a deterministic SIGINT for tests (0: never)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *outDir == "" {
		return errors.New("-resume requires -out (the run journal lives in the output directory)")
	}
	if *cancelAfter > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		var done atomic.Int64
		limit := int64(*cancelAfter)
		cancelHook = func() {
			if done.Add(1) == limit {
				cancel()
			}
		}
		defer func() { cancelHook = nil }()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ugfbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ugfbench: memprofile:", err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}

	fid, err := experiments.ParseFidelity(*fidelity)
	if err != nil {
		return err
	}

	var selected []experiments.Experiment
	if *expID == "all" {
		selected = experiments.All()
	} else {
		e, ok := experiments.ByID(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", *expID, strings.Join(experiments.IDs(), ", "))
		}
		selected = []experiments.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	var reports []*experiments.Report
	for _, e := range selected {
		cfg := experiments.Config{
			Fidelity: fid, Workers: *workers, BaseSeed: *seed,
			Context: ctx, MaxWall: *maxwall,
		}
		cfg.Progress = progressCallback(e.ID, *progress)
		var j *runner.Journal
		if *outDir != "" {
			var err error
			j, err = runner.OpenJournal(filepath.Join(*outDir, e.ID+".journal.jsonl"), *resume)
			if err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
			cfg.Journal = j
		}
		start := time.Now()
		rep, err := e.Run(cfg)
		if j != nil {
			if cerr := j.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			if errors.Is(err, context.Canceled) && j != nil {
				return fmt.Errorf("experiment %s: interrupted — %d finished run(s) are journaled in %s; rerun with -resume to continue: %w",
					e.ID, j.Len(), j.Path(), err)
			}
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		if j != nil && j.ErrorCount() == 0 {
			// A clean sweep no longer needs its journal; one that recorded
			// deterministic failures keeps it as the forensic record.
			if err := j.Remove(); err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
		}
		if *progress {
			fmt.Fprint(os.Stderr, "\r\033[K")
		}
		if err := render(out, rep, time.Since(start)); err != nil {
			return err
		}
		if *outDir != "" {
			if err := writeFiles(*outDir, rep); err != nil {
				return err
			}
		}
		reports = append(reports, rep)
	}
	if *summary != "" {
		if err := writeSummary(*summary, reports); err != nil {
			return err
		}
	}
	return nil
}

// cancelHook, when set, is invoked once per completed run; the
// -cancelafter flag uses it to turn "N runs finished" into a context
// cancellation, giving tests a deterministic stand-in for SIGINT.
var cancelHook func()

// progressCallback builds the per-run callback passed to the runner:
// the optional terminal progress line plus the -cancelafter hook.
func progressCallback(id string, print bool) func(done, total int) {
	hook := cancelHook
	if hook == nil && !print {
		return nil
	}
	return func(done, total int) {
		if hook != nil {
			hook()
		}
		if print {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d runs", id, done, total)
		}
	}
}

// atomicWrite streams the file through a temp file in the target
// directory and renames it into place, so an interrupted or failing
// ugfbench never leaves a truncated artifact where a good one (from a
// previous sweep) used to be.
func atomicWrite(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeSummary renders the combined claims-status table: one row per
// claim verdict found in the reports' notes.
func writeSummary(path string, reports []*experiments.Report) error {
	return atomicWrite(path, func(f io.Writer) error {
		fmt.Fprintln(f, "| experiment | claim | status |")
		fmt.Fprintln(f, "| --- | --- | --- |")
		for _, rep := range reports {
			for _, note := range rep.Notes {
				claim, status, ok := splitVerdict(note)
				if !ok {
					continue
				}
				fmt.Fprintf(f, "| `%s` | %s | %s |\n", rep.ID, claim, status)
			}
		}
		return nil
	})
}

// splitVerdict extracts (claim, status) from a "… claim …: REPRODUCED"
// note; trailing commentary after the verdict stays with the claim.
// Notes without a verdict are skipped.
func splitVerdict(note string) (claim, status string, ok bool) {
	for _, v := range []string{"NOT reproduced", "REPRODUCED"} {
		suffix := ": " + v
		if idx := strings.LastIndex(note, suffix); idx >= 0 {
			claim = note[:idx]
			if rest := strings.TrimSpace(note[idx+len(suffix):]); rest != "" {
				claim += " " + rest
			}
			return claim, v, true
		}
	}
	return "", "", false
}

func render(w io.Writer, rep *experiments.Report, elapsed time.Duration) error {
	fmt.Fprintf(w, "==== %s — %s (fidelity: %s, %v) ====\n", rep.ID, rep.Title, rep.Fidelity, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "paper: %s\n\n", rep.Paper)
	for _, t := range rep.Tables {
		if err := t.Text(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, c := range rep.Charts {
		fmt.Fprintln(w, c.Render())
	}
	for _, n := range rep.Notes {
		fmt.Fprintf(w, "  - %s\n", n)
	}
	fmt.Fprintln(w)
	return nil
}

func writeFiles(dir string, rep *experiments.Report) error {
	for i, t := range rep.Tables {
		csvPath := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", rep.ID, i))
		if err := atomicWrite(csvPath, t.CSV); err != nil {
			return err
		}
	}
	return atomicWrite(filepath.Join(dir, rep.ID+".md"), func(md io.Writer) error {
		fmt.Fprintf(md, "## %s — %s\n\n*Fidelity: %s.*\n\n**Paper:** %s\n\n", rep.ID, rep.Title, rep.Fidelity, rep.Paper)
		for _, t := range rep.Tables {
			if err := t.Markdown(md); err != nil {
				return err
			}
			fmt.Fprintln(md)
		}
		for _, c := range rep.Charts {
			fmt.Fprintf(md, "```\n%s```\n\n", c.Render())
		}
		fmt.Fprintln(md, "**Findings:**")
		for _, n := range rep.Notes {
			fmt.Fprintf(md, "- %s\n", n)
		}
		return nil
	})
}
