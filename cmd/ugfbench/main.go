// Command ugfbench regenerates the figures and tables of "The Universal
// Gossip Fighter": one experiment per paper artifact (see DESIGN.md §3).
// It prints text tables, ASCII charts and machine-checked shape notes, and
// optionally writes CSV and Markdown files per experiment.
//
// Examples:
//
//	ugfbench -list
//	ugfbench -exp fig3b                      # one panel, quick fidelity
//	ugfbench -exp all -fidelity medium -out results/
//	ugfbench -exp fig3e -fidelity full       # the paper's exact setting
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/ugf-sim/ugf/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ugfbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ugfbench", flag.ContinueOnError)
	var (
		expID = fs.String("exp", "all",
			"experiment id or \"all\": "+strings.Join(experiments.IDs(), "|"))
		fidelity = fs.String("fidelity", "quick", "quick|medium|full (full = the paper's 50-run grid)")
		outDir   = fs.String("out", "", "directory for CSV and Markdown output (optional)")
		summary  = fs.String("summary", "", "write a combined claims-status Markdown table to this file")
		seed     = fs.Uint64("seed", 0, "base seed (0: default 2022)")
		workers  = fs.Int("workers", 0, "parallel runs (0: GOMAXPROCS)")
		list       = fs.Bool("list", false, "list experiments and exit")
		progress   = fs.Bool("progress", true, "print run progress")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ugfbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ugfbench: memprofile:", err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}

	fid, err := experiments.ParseFidelity(*fidelity)
	if err != nil {
		return err
	}

	var selected []experiments.Experiment
	if *expID == "all" {
		selected = experiments.All()
	} else {
		e, ok := experiments.ByID(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", *expID, strings.Join(experiments.IDs(), ", "))
		}
		selected = []experiments.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	var reports []*experiments.Report
	for _, e := range selected {
		cfg := experiments.Config{Fidelity: fid, Workers: *workers, BaseSeed: *seed}
		if *progress {
			cfg.Progress = progressPrinter(e.ID)
		}
		start := time.Now()
		rep, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		if *progress {
			fmt.Fprint(os.Stderr, "\r\033[K")
		}
		if err := render(out, rep, time.Since(start)); err != nil {
			return err
		}
		if *outDir != "" {
			if err := writeFiles(*outDir, rep); err != nil {
				return err
			}
		}
		reports = append(reports, rep)
	}
	if *summary != "" {
		if err := writeSummary(*summary, reports); err != nil {
			return err
		}
	}
	return nil
}

// writeSummary renders the combined claims-status table: one row per
// claim verdict found in the reports' notes.
func writeSummary(path string, reports []*experiments.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "| experiment | claim | status |")
	fmt.Fprintln(f, "| --- | --- | --- |")
	for _, rep := range reports {
		for _, note := range rep.Notes {
			claim, status, ok := splitVerdict(note)
			if !ok {
				continue
			}
			fmt.Fprintf(f, "| `%s` | %s | %s |\n", rep.ID, claim, status)
		}
	}
	return nil
}

// splitVerdict extracts (claim, status) from a "… claim …: REPRODUCED"
// note; trailing commentary after the verdict stays with the claim.
// Notes without a verdict are skipped.
func splitVerdict(note string) (claim, status string, ok bool) {
	for _, v := range []string{"NOT reproduced", "REPRODUCED"} {
		suffix := ": " + v
		if idx := strings.LastIndex(note, suffix); idx >= 0 {
			claim = note[:idx]
			if rest := strings.TrimSpace(note[idx+len(suffix):]); rest != "" {
				claim += " " + rest
			}
			return claim, v, true
		}
	}
	return "", "", false
}

func progressPrinter(id string) func(done, total int) {
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d runs", id, done, total)
	}
}

func render(w io.Writer, rep *experiments.Report, elapsed time.Duration) error {
	fmt.Fprintf(w, "==== %s — %s (fidelity: %s, %v) ====\n", rep.ID, rep.Title, rep.Fidelity, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "paper: %s\n\n", rep.Paper)
	for _, t := range rep.Tables {
		if err := t.Text(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, c := range rep.Charts {
		fmt.Fprintln(w, c.Render())
	}
	for _, n := range rep.Notes {
		fmt.Fprintf(w, "  - %s\n", n)
	}
	fmt.Fprintln(w)
	return nil
}

func writeFiles(dir string, rep *experiments.Report) error {
	md, err := os.Create(filepath.Join(dir, rep.ID+".md"))
	if err != nil {
		return err
	}
	defer md.Close()
	fmt.Fprintf(md, "## %s — %s\n\n*Fidelity: %s.*\n\n**Paper:** %s\n\n", rep.ID, rep.Title, rep.Fidelity, rep.Paper)
	for i, t := range rep.Tables {
		if err := t.Markdown(md); err != nil {
			return err
		}
		fmt.Fprintln(md)
		csvPath := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", rep.ID, i))
		cf, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := t.CSV(cf); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
	}
	for _, c := range rep.Charts {
		fmt.Fprintf(md, "```\n%s```\n\n", c.Render())
	}
	fmt.Fprintln(md, "**Findings:**")
	for _, n := range rep.Notes {
		fmt.Fprintf(md, "- %s\n", n)
	}
	return nil
}
