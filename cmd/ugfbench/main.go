// Command ugfbench regenerates the figures and tables of "The Universal
// Gossip Fighter": one experiment per paper artifact (see DESIGN.md §3).
// It prints text tables, ASCII charts and machine-checked shape notes, and
// optionally writes CSV and Markdown files per experiment.
//
// The harness is fault-tolerant (DESIGN.md §6): a panicking run is
// isolated and reported instead of crashing the sweep, SIGINT stops the
// sweep cleanly, and with -out every finished run is journaled so that
// -resume continues an interrupted sweep without recomputation and
// reproduces byte-identical outputs.
//
// Observability (DESIGN.md §7): a live status line on stderr tracks
// completed/failed/flaky runs with a journal-aware ETA; -stats prints the
// engine's aggregated run-level counters per experiment; -trace streams
// one JSONL event trace per run to disk; -debugaddr serves expvar
// (including the live progress snapshot) and pprof over HTTP while a long
// sweep runs.
//
// Distributed sweeps (DESIGN.md §13): -serve turns the -debugaddr
// listener into a sweep coordinator carrying a content-addressed result
// cache and an HTTP job API; -worker joins a coordinator and executes
// leased runs; -coord routes an ordinary experiment invocation through a
// coordinator instead of the local pool, with byte-identical artifacts.
//
// Examples:
//
//	ugfbench -list
//	ugfbench -exp fig3b                      # one panel, quick fidelity
//	ugfbench -exp all -fidelity medium -out results/
//	ugfbench -exp fig3e -fidelity full       # the paper's exact setting
//	ugfbench -exp all -fidelity full -out results/ -resume   # after ^C
//	ugfbench -exp fig3a -stats -debugaddr localhost:6060
//	ugfbench -exp example1 -trace traces/ -trace-kinds send,crash
//	ugfbench -serve -debugaddr :6060 -cachedir cache/        # coordinator
//	ugfbench -worker http://coord:6060                       # on each machine
//	ugfbench -exp fig3e -fidelity full -coord http://coord:6060 -out results/
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debugaddr server
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/ugf-sim/ugf/internal/cliflags"
	"github.com/ugf-sim/ugf/internal/experiments"
	"github.com/ugf-sim/ugf/internal/runner"
	"github.com/ugf-sim/ugf/internal/service"
	"github.com/ugf-sim/ugf/internal/sim"
	simtrace "github.com/ugf-sim/ugf/internal/sim/trace"
)

// currentProgress holds the active experiment's latest progress snapshot
// for the expvar endpoint (-debugaddr): `ugfbench_progress` serves it as
// JSON alongside the standard runtime vars.
var currentProgress atomic.Pointer[runner.Snapshot]

func init() {
	expvar.Publish("ugfbench_progress", expvar.Func(func() any {
		if s := currentProgress.Load(); s != nil {
			return *s
		}
		return runner.Snapshot{}
	}))
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ugfbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ugfbench", flag.ContinueOnError)
	var common cliflags.Common
	common.Register(fs)
	var (
		expID = fs.String("exp", "all",
			"experiment id or \"all\": "+strings.Join(experiments.IDs(), "|"))
		fidelity    = fs.String("fidelity", "quick", "quick|medium|full (full = the paper's 50-run grid)")
		outDir      = fs.String("out", "", "directory for CSV and Markdown output (optional)")
		summary     = fs.String("summary", "", "write a combined claims-status Markdown table to this file")
		seed        = fs.Uint64("seed", 0, "base seed (0: default 2022)")
		workers     = fs.Int("workers", 0, "parallel runs (0: GOMAXPROCS); with -worker, concurrent leases")
		list        = fs.Bool("list", false, "list experiments and exit")
		progress    = fs.Bool("progress", true, "print run progress")
		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = fs.String("memprofile", "", "write a heap profile to this file on exit")
		resume      = fs.Bool("resume", false, "reuse journaled runs from a previous interrupted sweep (requires -out)")
		maxwall     = fs.Duration("maxwall", 0, "per-run wall-clock watchdog; runs over the limit count as cutoffs (0: none)")
		cancelAfter = fs.Int("cancelafter", 0, "cancel the sweep after this many completed runs — a deterministic SIGINT for tests (0: never)")
		traceDir    = fs.String("trace", "", "stream one JSONL event trace per run into this directory (can be large)")
		debugAddr   = fs.String("debugaddr", "", "serve expvar (/debug/vars, incl. live progress) and pprof (/debug/pprof) on this HTTP address")
		serve       = fs.Bool("serve", false, "run as a sweep coordinator: mount the job API on -debugaddr and wait for workers and submissions")
		workerURL   = fs.String("worker", "", "run as a sweep worker against the coordinator at this URL (e.g. http://host:6060)")
		coordURL    = fs.String("coord", "", "execute experiments through the coordinator at this URL instead of the local pool")
		cacheDir    = fs.String("cachedir", "", "with -serve, persist the content-addressed result cache in this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	common.Warn(fs, os.Stderr)
	if err := common.Validate(*traceDir != ""); err != nil {
		return err
	}
	if *resume && *outDir == "" {
		return errors.New("-resume requires -out (the run journal lives in the output directory)")
	}
	modes := 0
	for _, on := range []bool{*serve, *workerURL != "", *coordURL != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return errors.New("-serve, -worker, and -coord are mutually exclusive")
	}
	if *serve && *debugAddr == "" {
		return errors.New("-serve requires -debugaddr (the job API shares its listener)")
	}
	if *cacheDir != "" && !*serve {
		return errors.New("-cachedir only applies to -serve (workers and clients hold no cache)")
	}
	kindMask, err := common.KindMask()
	if err != nil {
		return err
	}
	faultPlan, err := common.FaultPlan()
	if err != nil {
		return err
	}
	topo, err := common.Topology()
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debugaddr: %w", err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "ugfbench: debug endpoint on http://%s/debug/vars and /debug/pprof/\n", ln.Addr())
		if *serve {
			coord, err := newCoordinator(*cacheDir)
			if err != nil {
				return err
			}
			// The job API shares the debug listener: one address carries
			// observability and jobs.
			service.Register(http.DefaultServeMux, coord)
			fmt.Fprintf(os.Stderr, "ugfbench: sweep coordinator on http://%s/v1/\n", ln.Addr())
			go http.Serve(ln, nil)
			<-ctx.Done()
			return nil
		}
		// DefaultServeMux carries expvar's and net/http/pprof's handlers.
		go http.Serve(ln, nil)
	}
	if *workerURL != "" {
		return runWorker(ctx, *workerURL, *workers)
	}
	if *cancelAfter > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		var done atomic.Int64
		limit := int64(*cancelAfter)
		cancelHook = func() {
			if done.Add(1) == limit {
				cancel()
			}
		}
		defer func() { cancelHook = nil }()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ugfbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ugfbench: memprofile:", err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}

	fid, err := experiments.ParseFidelity(*fidelity)
	if err != nil {
		return err
	}

	var selected []experiments.Experiment
	if *expID == "all" {
		selected = experiments.All()
	} else {
		e, ok := experiments.ByID(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", *expID, strings.Join(experiments.IDs(), ", "))
		}
		selected = []experiments.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return err
		}
	}

	var reports []*experiments.Report
	for _, e := range selected {
		cfg := experiments.Config{
			Fidelity: fid, Workers: *workers, Shards: common.Shards, BaseSeed: *seed,
			Context: ctx, MaxWall: *maxwall,
			Faults: faultPlan, StallWindow: common.StallWindow, Topology: topo,
			MaxEvents: common.MaxEvents,
		}
		if *coordURL != "" {
			client := service.NewClient(*coordURL)
			cfg.Exec = func(ctx context.Context, specs []runner.Spec, opts runner.Options) ([]runner.Result, error) {
				return service.ExecuteSpecs(ctx, client, specs, opts)
			}
		}
		prog := runner.NewProgress(nil, e.ID)
		if *progress {
			prog.W = os.Stderr
		}
		cfg.OnRun = onRunCallback(prog)
		if *traceDir != "" {
			cfg.Trace = traceFactory(*traceDir, e.ID, kindMask)
		}
		var j *runner.Journal
		if *outDir != "" {
			var err error
			j, err = runner.OpenJournal(filepath.Join(*outDir, e.ID+".journal.jsonl"), *resume)
			if err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
			cfg.Journal = j
		}
		start := time.Now()
		rep, err := e.Run(cfg)
		prog.Finish()
		if j != nil {
			if cerr := j.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			if errors.Is(err, context.Canceled) && j != nil {
				return fmt.Errorf("experiment %s: interrupted — %d finished run(s) are journaled in %s; rerun with -resume to continue: %w",
					e.ID, j.Len(), j.Path(), err)
			}
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		if j != nil && j.ErrorCount() == 0 {
			// A clean sweep no longer needs its journal; one that recorded
			// deterministic failures keeps it as the forensic record.
			if err := j.Remove(); err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
		}
		if err := render(out, rep, time.Since(start)); err != nil {
			return err
		}
		if common.Stats {
			renderStats(out, rep)
		}
		if *outDir != "" {
			if err := writeFiles(*outDir, rep); err != nil {
				return err
			}
		}
		reports = append(reports, rep)
	}
	if *summary != "" {
		if err := writeSummary(*summary, reports); err != nil {
			return err
		}
	}
	return nil
}

// cancelHook, when set, is invoked once per completed run; the
// -cancelafter flag uses it to turn "N runs finished" into a context
// cancellation, giving tests a deterministic stand-in for SIGINT.
var cancelHook func()

// onRunCallback builds the per-run callback passed to the runner: the
// progress line/ETA, the expvar snapshot, and the -cancelafter hook.
func onRunCallback(prog *runner.Progress) func(runner.RunUpdate) {
	hook := cancelHook
	return func(u runner.RunUpdate) {
		if hook != nil {
			hook()
		}
		prog.OnRun(u)
		snap := prog.Snapshot()
		currentProgress.Store(&snap)
	}
}

// newCoordinator builds the -serve coordinator, backed by a persistent
// result cache when -cachedir is set.
func newCoordinator(cacheDir string) (*service.Coordinator, error) {
	var opts service.Options
	if cacheDir != "" {
		cache, err := service.NewCache(cacheDir)
		if err != nil {
			return nil, fmt.Errorf("cachedir: %w", err)
		}
		opts.Cache = cache
	}
	return service.NewCoordinator(opts), nil
}

// runWorker executes leased runs against a remote coordinator until
// interrupted; -workers bounds concurrent leases (0: GOMAXPROCS).
func runWorker(ctx context.Context, coordURL string, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "ugfbench: worker: %d lease slot(s) against %s\n", workers, coordURL)
	var done atomic.Int64
	err := service.RunWorker(ctx, service.NewClient(coordURL), service.WorkerOptions{
		Concurrency: workers,
		OnRun: func(lease *service.Lease, res service.CompleteRequest) {
			n := done.Add(1)
			status := "ok"
			if res.ConfigError != "" || res.Err != nil {
				status = "failed"
			}
			fmt.Fprintf(os.Stderr, "ugfbench: worker: run %d (%s seed=%d) %s\n", n, lease.Spec.Protocol, lease.Spec.Seed, status)
		},
	})
	if errors.Is(err, context.Canceled) {
		return nil // clean shutdown
	}
	return err
}

// traceFactory builds the per-run trace-sink factory for -trace: one JSONL
// file per run, named after the experiment, spec, and run index, filtered
// to the -trace-kinds mask. A file that cannot be created disables tracing
// for that run (reported on stderr) without failing it.
func traceFactory(dir, expID string, kinds sim.KindMask) func(runner.Spec, int) sim.TraceSink {
	return func(spec runner.Spec, run int) sim.TraceSink {
		name := fmt.Sprintf("%s_%s_run%03d.jsonl", expID, sanitizeName(spec.Name), run)
		j, err := simtrace.Create(filepath.Join(dir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ugfbench: trace: %v\n", err)
			return nil
		}
		if kinds != 0 {
			return simtrace.Filter{Kinds: kinds}.Sink(j)
		}
		return j
	}
}

// sanitizeName makes a spec name filesystem-safe ("ears/ugf" → "ears-ugf").
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', ' ':
			return '-'
		}
		return r
	}, s)
}

// renderStats prints the experiment's aggregated engine counters (-stats).
func renderStats(w io.Writer, rep *experiments.Report) {
	s := &rep.Engine
	fmt.Fprintf(w, "engine stats over %d run(s):\n", rep.EngineRuns)
	fmt.Fprintf(w, "  scheduler: %d events, %d heap pushes, %d pops, %d active steps\n",
		s.Events, s.HeapPushes, s.HeapPops, s.ActiveSteps)
	fmt.Fprintf(w, "  messages:  %d sent, %d delivered, %d dropped at crashed procs, %d omitted%s\n",
		s.Sends, s.Deliveries, s.DroppedCrashed, s.OmittedSends, kindBreakdown(s.MessagesByKind))
	if s.DroppedLink != 0 || s.DupDeliveries != 0 || s.CorruptDrops != 0 {
		fmt.Fprintf(w, "  faults:    %d dropped on links, %d duplicate deliveries, %d corrupt discards\n",
			s.DroppedLink, s.DupDeliveries, s.CorruptDrops)
	}
	if s.BlockedSends != 0 || s.TopologyRewrites != 0 {
		fmt.Fprintf(w, "  topology:  %d sends blocked off-graph, %d edge rewrites\n",
			s.BlockedSends, s.TopologyRewrites)
	}
	fmt.Fprintf(w, "  pressure:  max %d in flight, max %d pending in mailboxes\n",
		s.MaxInFlight, s.MaxPending)
	fmt.Fprintf(w, "  lifecycle: %d local steps, %d sleeps, %d wakes, %d crashes, %d recoveries\n",
		s.LocalSteps, s.Sleeps, s.Wakes, s.Crashes, s.Recoveries)
	fmt.Fprintf(w, "  adversary: %d delta / %d delay / %d omission / %d link rewrites\n",
		s.DeltaRewrites, s.DelayRewrites, s.OmitRewrites, s.LinkRewrites)
	fmt.Fprintf(w, "  wall time: init %v, run %v, finalize %v\n",
		s.Wall.Init.Round(time.Microsecond), s.Wall.Run.Round(time.Microsecond),
		s.Wall.Finalize.Round(time.Microsecond))
	if len(s.Wall.ShardCommit) > 0 {
		fmt.Fprintf(w, "  shards:    %d commit lane(s) %s, merge %v, imbalance ×%.2f\n",
			len(s.Wall.ShardCommit), shardWalls(s.Wall.ShardCommit),
			s.Wall.ShardMerge.Round(time.Microsecond), s.Wall.ShardImbalance)
	}
	fmt.Fprintln(w)
}

// shardWalls renders the per-shard commit walls as "[1.2ms 1.3ms …]".
func shardWalls(ws []time.Duration) string {
	parts := make([]string, len(ws))
	for i, d := range ws {
		parts[i] = d.Round(time.Microsecond).String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// kindBreakdown renders MessagesByKind as " (data×12, pull×7)", or "".
func kindBreakdown(kinds []sim.KindCount) string {
	if len(kinds) == 0 {
		return ""
	}
	parts := make([]string, len(kinds))
	for i, kc := range kinds {
		parts[i] = fmt.Sprintf("%s×%d", kc.Kind, kc.Count)
	}
	return " (" + strings.Join(parts, ", ") + ")"
}

// atomicWrite streams the file through a temp file in the target
// directory and renames it into place, so an interrupted or failing
// ugfbench never leaves a truncated artifact where a good one (from a
// previous sweep) used to be.
func atomicWrite(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeSummary renders the combined claims-status table: one row per
// claim verdict found in the reports' notes.
func writeSummary(path string, reports []*experiments.Report) error {
	return atomicWrite(path, func(f io.Writer) error {
		fmt.Fprintln(f, "| experiment | claim | status |")
		fmt.Fprintln(f, "| --- | --- | --- |")
		for _, rep := range reports {
			for _, note := range rep.Notes {
				claim, status, ok := splitVerdict(note)
				if !ok {
					continue
				}
				fmt.Fprintf(f, "| `%s` | %s | %s |\n", rep.ID, claim, status)
			}
		}
		return nil
	})
}

// splitVerdict extracts (claim, status) from a "… claim …: REPRODUCED"
// note; trailing commentary after the verdict stays with the claim.
// Notes without a verdict are skipped.
func splitVerdict(note string) (claim, status string, ok bool) {
	for _, v := range []string{"NOT reproduced", "REPRODUCED"} {
		suffix := ": " + v
		if idx := strings.LastIndex(note, suffix); idx >= 0 {
			claim = note[:idx]
			if rest := strings.TrimSpace(note[idx+len(suffix):]); rest != "" {
				claim += " " + rest
			}
			return claim, v, true
		}
	}
	return "", "", false
}

func render(w io.Writer, rep *experiments.Report, elapsed time.Duration) error {
	fmt.Fprintf(w, "==== %s — %s (fidelity: %s, %v) ====\n", rep.ID, rep.Title, rep.Fidelity, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "paper: %s\n\n", rep.Paper)
	for _, t := range rep.Tables {
		if err := t.Text(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, c := range rep.Charts {
		fmt.Fprintln(w, c.Render())
	}
	for _, n := range rep.Notes {
		fmt.Fprintf(w, "  - %s\n", n)
	}
	fmt.Fprintln(w)
	return nil
}

func writeFiles(dir string, rep *experiments.Report) error {
	for i, t := range rep.Tables {
		csvPath := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", rep.ID, i))
		if err := atomicWrite(csvPath, t.CSV); err != nil {
			return err
		}
	}
	return atomicWrite(filepath.Join(dir, rep.ID+".md"), func(md io.Writer) error {
		fmt.Fprintf(md, "## %s — %s\n\n*Fidelity: %s.*\n\n**Paper:** %s\n\n", rep.ID, rep.Title, rep.Fidelity, rep.Paper)
		for _, t := range rep.Tables {
			if err := t.Markdown(md); err != nil {
				return err
			}
			fmt.Fprintln(md)
		}
		for _, c := range rep.Charts {
			fmt.Fprintf(md, "```\n%s```\n\n", c.Render())
		}
		fmt.Fprintln(md, "**Findings:**")
		for _, n := range rep.Notes {
			fmt.Fprintf(md, "- %s\n", n)
		}
		return nil
	})
}
