package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ugf-sim/ugf/internal/sim/trace"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(context.Background(), args, &b)
	return b.String(), err
}

func TestList(t *testing.T) {
	out, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig3a", "fig3e", "lemma45", "tradeoff", "adaptation"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %q:\n%s", id, out)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	out, err := runCLI(t, "-exp", "example1", "-progress=false")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"example1", "paper:", "REPRODUCED", "fidelity: quick"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestOutputFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCLI(t, "-exp", "lemma45", "-out", dir, "-progress=false"); err != nil {
		t.Fatal(err)
	}
	md, err := os.ReadFile(filepath.Join(dir, "lemma45.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "Lemma") || !strings.Contains(string(md), "**Findings:**") {
		t.Errorf("markdown incomplete:\n%s", md)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "lemma45_0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "t,lemma,empirical") {
		t.Errorf("csv header wrong: %q", strings.SplitN(string(csv), "\n", 2)[0])
	}
}

func TestSummaryFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "summary.md")
	if _, err := runCLI(t, "-exp", "example1", "-summary", path, "-progress=false"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "| `example1` |") || !strings.Contains(s, "REPRODUCED") {
		t.Errorf("summary incomplete:\n%s", s)
	}
}

func TestSplitVerdict(t *testing.T) {
	cases := []struct {
		note, claim, status string
		ok                  bool
	}{
		{"paper claim — X: REPRODUCED", "paper claim — X", "REPRODUCED", true},
		{"paper claim — Y: NOT reproduced", "paper claim — Y", "NOT reproduced", true},
		{"designation — Z: NOT reproduced (commentary)", "designation — Z (commentary)", "NOT reproduced", true},
		{"just a note", "", "", false},
	}
	for _, c := range cases {
		claim, status, ok := splitVerdict(c.note)
		if ok != c.ok || claim != c.claim || status != c.status {
			t.Errorf("splitVerdict(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.note, claim, status, ok, c.claim, c.status, c.ok)
		}
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if _, err := runCLI(t, "-exp", "example1", "-progress=false", "-cpuprofile", cpu, "-memprofile", mem); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile not written: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-exp", "bogus"},
		{"-fidelity", "bogus"},
		{"-not-a-flag"},
		{"-resume"},                             // -resume without -out has no journal to resume from
		{"-tracekinds", "send"},                 // -tracekinds without -trace has nothing to filter
		{"-trace", ".", "-tracekinds", "bogus"}, // unknown trace kind
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v: no error", args)
		}
	}
}

// TestKillAndResume is the end-to-end fault-tolerance check: a sweep
// cancelled mid-flight (via -cancelafter, the deterministic stand-in for
// SIGINT) journals its finished runs, and rerunning with -resume completes
// the sweep with artifacts byte-identical to an uninterrupted one.
func TestKillAndResume(t *testing.T) {
	baseline := t.TempDir()
	resumed := t.TempDir()
	exp := "fig3a"
	common := []string{"-exp", exp, "-progress=false", "-out"}

	if _, err := runCLI(t, append(common, baseline)...); err != nil {
		t.Fatal(err)
	}

	_, err := runCLI(t, append(append(common, resumed), "-cancelafter", "10")...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep: err = %v, want context.Canceled", err)
	}
	journal := filepath.Join(resumed, exp+".journal.jsonl")
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("no journal after interruption: %v", err)
	}

	if _, err := runCLI(t, append(append(common, resumed), "-resume")...); err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if _, err := os.Stat(journal); !os.IsNotExist(err) {
		t.Errorf("journal not removed after clean resume (err=%v)", err)
	}

	for _, name := range []string{exp + "_0.csv", exp + ".md"} {
		want, err := os.ReadFile(filepath.Join(baseline, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(resumed, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between uninterrupted and resumed sweeps:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s",
				name, want, got)
		}
	}

	for _, dir := range []string{baseline, resumed} {
		leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(leftovers) > 0 {
			t.Errorf("temp files left behind in %s: %v", dir, leftovers)
		}
	}
}

func TestStatsFlag(t *testing.T) {
	out, err := runCLI(t, "-exp", "example1", "-progress=false", "-stats")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"engine stats over", "scheduler:", "messages:", "pressure:",
		"lifecycle:", "adversary:", "wall time:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "scheduler: 0 events,") {
		t.Errorf("-stats reports an empty scheduler:\n%s", out)
	}
}

func TestTraceFlagWritesPerRunFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCLI(t, "-exp", "example1", "-progress=false", "-trace", dir); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "example1_*_run*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no trace files written to %s", dir)
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := trace.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(recs) == 0 || recs[len(recs)-1].Kind != "end" {
			t.Errorf("%s: trace empty or not terminated (%d records)", path, len(recs))
		}
	}
}

func TestTraceKindsFiltersFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCLI(t, "-exp", "example1", "-progress=false",
		"-trace", dir, "-tracekinds", "send"); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no trace files (err=%v)", err)
	}
	total := 0
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := trace.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, r := range recs {
			if r.Kind != "send" {
				t.Fatalf("%s: kind %q escaped the -tracekinds send filter", path, r.Kind)
			}
		}
		total += len(recs)
	}
	if total == 0 {
		t.Fatal("filtered traces kept no send events at all")
	}
}

// TestResumeProgressCountsJournal is the CLI end of the live-progress
// acceptance: after an interrupted sweep is resumed, the progress snapshot
// (the same one -debugaddr serves via expvar) must show the full sweep done
// with the journal-served runs counted separately, so the ETA during the
// resume was derived from computed runs only.
func TestResumeProgressCountsJournal(t *testing.T) {
	dir := t.TempDir()
	common := []string{"-exp", "fig3a", "-progress=false", "-out", dir}

	_, err := runCLI(t, append(common, "-cancelafter", "10")...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep: err = %v, want context.Canceled", err)
	}
	if _, err := runCLI(t, append(common, "-resume")...); err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	snap := currentProgress.Load()
	if snap == nil {
		t.Fatal("no progress snapshot published")
	}
	if snap.Done != snap.Total || snap.Total == 0 {
		t.Fatalf("resumed sweep incomplete in snapshot: %+v", snap)
	}
	if snap.Journaled == 0 || snap.Journaled >= snap.Total {
		t.Fatalf("snapshot must count journal-served runs (0 < Journaled < Total): %+v", snap)
	}
}
