package ugf_test

// Observability regression tests over the golden matrix: the engine's
// always-on Stats block must be (a) populated on every run, (b) identical
// between serial and parallel stepping, and (c) inert — streaming a full
// JSONL trace of a run must leave its golden row untouched. Together with
// TestGoldenOutcomes this pins the "observation is pure" contract across
// every protocol × adversary family of the evaluation.

import (
	"io"
	"reflect"
	"testing"

	"github.com/ugf-sim/ugf"
)

func TestGoldenStatsSerialParallelIdentical(t *testing.T) {
	for i, c := range goldenMatrix() {
		serial, err := ugf.Run(goldenConfig(t, c, i, 1))
		if err != nil {
			t.Fatalf("case %d (%s/%s N=%d): %v", i, c.proto, c.adv, c.n, err)
		}
		parallel, err := ugf.Run(goldenConfig(t, c, i, 4))
		if err != nil {
			t.Fatalf("case %d (%s/%s N=%d): %v", i, c.proto, c.adv, c.n, err)
		}
		if serial.Stats.Events == 0 || serial.Stats.Sends != serial.Messages {
			t.Errorf("case %d (%s/%s N=%d): stats not populated: %+v",
				i, c.proto, c.adv, c.n, serial.Stats)
		}
		if !reflect.DeepEqual(serial.Stats.StripWall(), parallel.Stats.StripWall()) {
			t.Errorf("case %d (%s/%s N=%d): stats diverge across worker counts:\nserial   %+v\nparallel %+v",
				i, c.proto, c.adv, c.n, serial.Stats, parallel.Stats)
		}
	}
}

func TestGoldenOutcomesUnchangedByJSONLTrace(t *testing.T) {
	cases := goldenMatrix()
	if len(cases) != len(goldenRows) {
		t.Fatalf("matrix has %d cases but table has %d rows", len(cases), len(goldenRows))
	}
	for i, c := range cases {
		cfg := goldenConfig(t, c, i, 1)
		cfg.Trace = ugf.NewJSONLTrace(io.Discard)
		o, err := ugf.Run(cfg)
		if err != nil {
			t.Fatalf("case %d (%s/%s N=%d): %v", i, c.proto, c.adv, c.n, err)
		}
		if err := ugf.CloseTrace(cfg.Trace); err != nil {
			t.Fatalf("case %d: trace close: %v", i, err)
		}
		if got := rowOf(o); got != goldenRows[i] {
			t.Errorf("case %d (%s/%s N=%d): JSONL trace changed the outcome:\n got  %v\n want %v",
				i, c.proto, c.adv, c.n, got, goldenRows[i])
		}
	}
}
