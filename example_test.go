package ugf_test

import (
	"fmt"

	"github.com/ugf-sim/ugf"
)

// The simplest possible run: a deterministic protocol with no adversary.
func ExampleRun() {
	outcome, err := ugf.Run(ugf.Config{
		N:        8,
		Protocol: ugf.Doubling{}, // deterministic: ⌈log₂8⌉ rounds, 8·3 messages
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(outcome)
	// Output:
	// doubling vs none: N=8 F=0 M=24 T=1.50 (T_end=3, δ=1, d=1, crashed=0, gathered=true)
}

// Attacking a randomized protocol with the Universal Gossip Fighter in
// the paper's experimental configuration. Runs are pure functions of
// (Config, Seed), so this output is reproducible.
func ExampleRun_underAttack() {
	outcome, err := ugf.Run(ugf.Config{
		N:         50,
		F:         15,
		Protocol:  ugf.EARS{},
		Adversary: ugf.UGF{FixedK: 1, FixedL: 1},
		Seed:      3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("strategy drawn: %s, rumor gathering: %v, crashed: %d\n",
		outcome.Strategy, outcome.Gathered, outcome.Crashed)
	// Output:
	// strategy drawn: 1, rumor gathering: true, crashed: 7
}

// Protocols and adversaries can be resolved by registry name — this is
// what the CLIs use.
func ExampleProtocolByName() {
	proto, ok := ugf.ProtocolByName("push-pull")
	fmt.Println(ok, proto.Name())

	adv, ok := ugf.AdversaryByName("strategy-2.1.1")
	fmt.Println(ok, adv.Name())
	// Output:
	// true push-pull
	// true strategy-2.k.l
}
