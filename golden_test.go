package ugf_test

// Golden-outcome regression tests: a pinned (Config, seed) → outcome table
// for a small (protocol × adversary × N) matrix. A run is specified to be a
// pure function of its Config, so these exact tuples must survive any
// engine rewrite — scheduler changes, delivery-queue changes, parallelism
// changes. If a change to the engine alters any row, it changed simulation
// semantics, not just performance, and must be treated as a bug (or as a
// deliberate, documented semantics change that regenerates the table).
//
// Regenerate with:
//
//	UGF_GOLDEN_PRINT=1 go test -run TestGoldenPrint -v .
//
// and paste the printed rows over goldenRows.

import (
	"fmt"
	"os"
	"testing"

	"github.com/ugf-sim/ugf"
)

type goldenCase struct {
	proto string
	adv   string
	n, f  int
}

// goldenMatrix spans every protocol family and adversary family of the
// paper's evaluation at two system sizes. Seeds are derived from the case
// index, so inserting cases in the middle invalidates later rows —
// append only.
func goldenMatrix() []goldenCase {
	var cases []goldenCase
	for _, size := range []struct{ n, f int }{{16, 4}, {48, 12}} {
		for _, proto := range []string{"push-pull", "ears", "sears", "round-robin", "broadcast"} {
			for _, adv := range []string{"none", "ugf", "strategy-1", "strategy-2.1.0", "strategy-2.1.1", "oblivious"} {
				cases = append(cases, goldenCase{proto: proto, adv: adv, n: size.n, f: size.f})
			}
		}
	}
	return cases
}

func goldenConfig(t testing.TB, c goldenCase, idx int, workers int) ugf.Config {
	t.Helper()
	proto, ok := ugf.ProtocolByName(c.proto)
	if !ok {
		t.Fatalf("unknown protocol %q", c.proto)
	}
	adv, ok := ugf.AdversaryByName(c.adv)
	if !ok {
		t.Fatalf("unknown adversary %q", c.adv)
	}
	return ugf.Config{
		N: c.n, F: c.f, Protocol: proto, Adversary: adv,
		Seed:    uint64(1000 + idx),
		Workers: workers,
	}
}

// goldenRow is the pinned outcome signature of one case.
type goldenRow struct {
	tEnd       ugf.Step
	quiescence ugf.Step
	messages   int64
	crashed    int
	gathered   bool
	strategy   string
}

func (r goldenRow) String() string {
	return fmt.Sprintf("{%d, %d, %d, %d, %v, %q}", r.tEnd, r.quiescence, r.messages, r.crashed, r.gathered, r.strategy)
}

func rowOf(o ugf.Outcome) goldenRow {
	return goldenRow{
		tEnd:       o.TEnd,
		quiescence: o.Quiescence,
		messages:   o.Messages,
		crashed:    o.Crashed,
		gathered:   o.Gathered,
		strategy:   o.Strategy,
	}
}

func TestGoldenOutcomes(t *testing.T) {
	cases := goldenMatrix()
	if len(cases) != len(goldenRows) {
		t.Fatalf("matrix has %d cases but table has %d rows — regenerate with UGF_GOLDEN_PRINT=1", len(cases), len(goldenRows))
	}
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			for i, c := range cases {
				o, err := ugf.Run(goldenConfig(t, c, i, workers))
				if err != nil {
					t.Fatalf("case %d (%s/%s N=%d): %v", i, c.proto, c.adv, c.n, err)
				}
				if got := rowOf(o); got != goldenRows[i] {
					t.Errorf("case %d (%s/%s N=%d F=%d seed=%d):\n got  %v\n want %v",
						i, c.proto, c.adv, c.n, c.f, 1000+i, got, goldenRows[i])
				}
			}
		})
	}
}

// TestGoldenPrint regenerates the table; see the file comment.
func TestGoldenPrint(t *testing.T) {
	if os.Getenv("UGF_GOLDEN_PRINT") == "" {
		t.Skip("set UGF_GOLDEN_PRINT=1 to regenerate the golden table")
	}
	for i, c := range goldenMatrix() {
		o, err := ugf.Run(goldenConfig(t, c, i, 1))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("\t%v, // %d: %s/%s N=%d\n", rowOf(o), i, c.proto, c.adv, c.n)
	}
}

// goldenRows holds {TEnd, Quiescence, Messages, Crashed, Gathered,
// Strategy} per case, in goldenMatrix order.
var goldenRows = []goldenRow{
	{8, 9, 228, 0, true, ""},            // 0: push-pull/none N=16
	{8, 9, 223, 4, true, "2.1.0"},       // 1: push-pull/ugf N=16
	{7, 8, 215, 2, true, "1"},           // 2: push-pull/strategy-1 N=16
	{8, 9, 210, 4, true, "2.1.0"},       // 3: push-pull/strategy-2.1.0 N=16
	{24, 40, 261, 0, true, "2.1.1"},     // 4: push-pull/strategy-2.1.1 N=16
	{6, 7, 204, 2, true, ""},            // 5: push-pull/oblivious N=16
	{15, 16, 217, 0, true, ""},          // 6: ears/none N=16
	{21, 22, 257, 2, true, "1"},         // 7: ears/ugf N=16
	{19, 20, 240, 2, true, "1"},         // 8: ears/strategy-1 N=16
	{52, 56, 415, 4, true, "2.1.0"},     // 9: ears/strategy-2.1.0 N=16
	{64, 72, 552, 0, true, "2.1.1"},     // 10: ears/strategy-2.1.1 N=16
	{21, 24, 267, 3, true, ""},          // 11: ears/oblivious N=16
	{5, 6, 960, 0, true, ""},            // 12: sears/none N=16
	{20, 24, 1584, 4, true, "2.1.0"},    // 13: sears/ugf N=16
	{8, 9, 1332, 2, true, "1"},          // 14: sears/strategy-1 N=16
	{20, 24, 1584, 4, true, "2.1.0"},    // 15: sears/strategy-2.1.0 N=16
	{48, 64, 2870, 0, true, "2.1.1"},    // 16: sears/strategy-2.1.1 N=16
	{5, 6, 951, 0, true, ""},            // 17: sears/oblivious N=16
	{15, 16, 240, 0, true, ""},          // 18: round-robin/none N=16
	{60, 61, 204, 4, true, "2.1.0"},     // 19: round-robin/ugf N=16
	{15, 16, 210, 2, true, "1"},         // 20: round-robin/strategy-1 N=16
	{60, 61, 204, 4, true, "2.1.0"},     // 21: round-robin/strategy-2.1.0 N=16
	{60, 76, 240, 0, true, "2.1.1"},     // 22: round-robin/strategy-2.1.1 N=16
	{15, 16, 223, 2, true, ""},          // 23: round-robin/oblivious N=16
	{1, 2, 240, 0, true, ""},            // 24: broadcast/none N=16
	{4, 20, 240, 0, true, "2.1.1"},      // 25: broadcast/ugf N=16
	{1, 2, 210, 2, true, "1"},           // 26: broadcast/strategy-1 N=16
	{4, 5, 225, 4, true, "2.1.0"},       // 27: broadcast/strategy-2.1.0 N=16
	{4, 20, 240, 0, true, "2.1.1"},      // 28: broadcast/strategy-2.1.1 N=16
	{1, 2, 240, 1, true, ""},            // 29: broadcast/oblivious N=16
	{9, 10, 894, 0, true, ""},           // 30: push-pull/none N=48
	{60, 60, 1203, 12, true, "2.1.0"},   // 31: push-pull/ugf N=48
	{13, 13, 1113, 6, true, "1"},        // 32: push-pull/strategy-1 N=48
	{60, 60, 1201, 12, true, "2.1.0"},   // 33: push-pull/strategy-2.1.0 N=48
	{204, 348, 1491, 0, true, "2.1.1"},  // 34: push-pull/strategy-2.1.1 N=48
	{9, 10, 914, 1, true, ""},           // 35: push-pull/oblivious N=48
	{21, 22, 965, 0, true, ""},          // 36: ears/none N=48
	{204, 216, 1734, 12, true, "2.1.0"}, // 37: ears/ugf N=48
	{31, 32, 1114, 6, true, "1"},        // 38: ears/strategy-1 N=48
	{204, 216, 1947, 12, true, "2.1.0"}, // 39: ears/strategy-2.1.0 N=48
	{528, 672, 3111, 0, true, "2.1.1"},  // 40: ears/strategy-2.1.1 N=48
	{30, 31, 1169, 4, true, ""},         // 41: ears/oblivious N=48
	{5, 6, 6480, 0, true, ""},           // 42: sears/none N=48
	{456, 600, 39110, 0, true, "2.1.1"}, // 43: sears/ugf N=48
	{10, 11, 11340, 6, true, "1"},       // 44: sears/strategy-1 N=48
	{84, 96, 19494, 12, true, "2.1.0"},  // 45: sears/strategy-2.1.0 N=48
	{456, 600, 39248, 0, true, "2.1.1"}, // 46: sears/strategy-2.1.1 N=48
	{5, 6, 6480, 0, true, ""},           // 47: sears/oblivious N=48
	{47, 48, 2256, 0, true, ""},         // 48: round-robin/none N=48
	{47, 48, 1974, 6, true, "1"},        // 49: round-robin/ugf N=48
	{47, 48, 1974, 6, true, "1"},        // 50: round-robin/strategy-1 N=48
	{564, 565, 1963, 12, true, "2.1.0"}, // 51: round-robin/strategy-2.1.0 N=48
	{564, 708, 2256, 0, true, "2.1.1"},  // 52: round-robin/strategy-2.1.1 N=48
	{47, 48, 2064, 10, true, ""},        // 53: round-robin/oblivious N=48
	{1, 2, 2256, 0, true, ""},           // 54: broadcast/none N=48
	{12, 156, 2256, 0, true, "2.1.1"},   // 55: broadcast/ugf N=48
	{1, 2, 1974, 6, true, "1"},          // 56: broadcast/strategy-1 N=48
	{12, 13, 2021, 12, true, "2.1.0"},   // 57: broadcast/strategy-2.1.0 N=48
	{12, 156, 2256, 0, true, "2.1.1"},   // 58: broadcast/strategy-2.1.1 N=48
	{1, 2, 2209, 1, true, ""},           // 59: broadcast/oblivious N=48
}
